package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/stats"
)

// ZIPUserRecord is one user's covariates and response for the era models
// of Tables 9 and 10.
type ZIPUserRecord struct {
	User       forum.UserID
	Completed  int // response: completed contracts the user was party to
	Disputes   float64
	Positive   float64
	Negative   float64
	MPosts     float64
	Initiated  float64
	Accepted   float64
	FirstTime  bool    // first era in which the user touched the contract system
	LengthDays float64 // days since first activity on the forum
}

// ZIPEraResult is one fitted era model with its sample description.
type ZIPEraResult struct {
	Era     dataset.Era
	Subset  string // "all", "first-time", or "existing"
	Model   *stats.ZIPResult
	Records int
}

// ZIPAllUsers fits Table 9: the all-users model for each era. SET-UP has
// no first-time covariate (everyone is a first-time user of the brand-new
// system).
func ZIPAllUsers(d *dataset.Dataset) ([]ZIPEraResult, error) {
	var out []ZIPEraResult
	for _, e := range dataset.Eras {
		recs := zipRecords(d, e, "all")
		model, err := fitZIP(recs, e != dataset.EraSetup)
		if err != nil {
			return nil, fmt.Errorf("analysis: ZIP %v: %w", e, err)
		}
		out = append(out, ZIPEraResult{Era: e, Subset: "all", Model: model, Records: len(recs)})
	}
	return out, nil
}

// ZIPSubgroups fits Table 10: first-time and existing users separately for
// STABLE and COVID-19.
func ZIPSubgroups(d *dataset.Dataset) ([]ZIPEraResult, error) {
	var out []ZIPEraResult
	for _, e := range []dataset.Era{dataset.EraStable, dataset.EraCovid} {
		for _, subset := range []string{"first-time", "existing"} {
			recs := zipRecords(d, e, subset)
			model, err := fitZIP(recs, false)
			if err != nil {
				return nil, fmt.Errorf("analysis: ZIP %v/%s: %w", e, subset, err)
			}
			out = append(out, ZIPEraResult{Era: e, Subset: subset, Model: model, Records: len(recs)})
		}
	}
	return out, nil
}

// zipRecords builds per-user records for an era. Users of the contract
// system in the era are all makers and takers of contracts created then.
func zipRecords(d *dataset.Dataset, e dataset.Era, subset string) []ZIPUserRecord {
	firstEra := firstEraOfUse(d)
	start, end := e.Span()
	recs := map[forum.UserID]*ZIPUserRecord{}
	get := func(u forum.UserID) *ZIPUserRecord {
		r, ok := recs[u]
		if !ok {
			r = &ZIPUserRecord{User: u, FirstTime: firstEra[u] == e}
			if user, okU := d.Users[u]; okU {
				r.MPosts = float64(user.MarketplacePosts)
				first := user.FirstPost
				if first.IsZero() || user.Joined.Before(first) {
					first = user.Joined
				}
				days := end.Sub(first).Hours() / 24
				if days < 0 {
					days = 0
				}
				r.LengthDays = days
			}
			recs[u] = r
		}
		return r
	}
	for _, c := range d.Contracts {
		if c.Created.Before(start) || !c.Created.Before(end) {
			continue
		}
		mr := get(c.Maker)
		tr := get(c.Taker)
		mr.Initiated++
		switch c.Status {
		case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
		default:
			tr.Accepted++
		}
		if c.IsComplete() {
			mr.Completed++
			tr.Completed++
		}
		if c.Status == forum.StatusDisputed {
			mr.Disputes++
			tr.Disputes++
		}
		switch c.TakerRating {
		case forum.RatingPositive:
			mr.Positive++
		case forum.RatingNegative:
			mr.Negative++
		}
		switch c.MakerRating {
		case forum.RatingPositive:
			tr.Positive++
		case forum.RatingNegative:
			tr.Negative++
		}
	}
	var out []ZIPUserRecord
	for _, r := range recs {
		switch subset {
		case "first-time":
			if !r.FirstTime {
				continue
			}
		case "existing":
			if r.FirstTime {
				continue
			}
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// firstEraOfUse maps each user to the era of their first contract-system
// activity.
func firstEraOfUse(d *dataset.Dataset) map[forum.UserID]dataset.Era {
	first := map[forum.UserID]time.Time{}
	for _, c := range d.Contracts {
		for _, u := range []forum.UserID{c.Maker, c.Taker} {
			if t, ok := first[u]; !ok || c.Created.Before(t) {
				first[u] = c.Created
			}
		}
	}
	out := map[forum.UserID]dataset.Era{}
	for u, t := range first {
		out[u] = dataset.EraOf(t)
	}
	return out
}

// fitZIP assembles the designs (square-root transforms on the skewed
// covariates, per the paper) and fits the zero-inflated Poisson model.
// The count model uses all covariates; the zero model uses disputes,
// negative ratings, the first-time flag (when present), and length.
func fitZIP(recs []ZIPUserRecord, withFirstTime bool) (*stats.ZIPResult, error) {
	n := len(recs)
	if n < 30 {
		return nil, fmt.Errorf("only %d records", n)
	}
	countNames := []string{
		"(Intercept)", "Disputes", "Positive Rating", "Negative Rating",
		"Marketplace Post Count", "No. of Initiated Contracts", "No. of Accepted Contracts",
	}
	zeroNames := []string{"(Intercept)", "Disputes", "Negative Rating"}
	if withFirstTime {
		countNames = append(countNames, "First-Time Contract User")
		zeroNames = append(zeroNames, "First-Time Contract User")
	}
	countNames = append(countNames, "Length")
	zeroNames = append(zeroNames, "Length")

	countX := stats.NewMatrix(n, len(countNames))
	zeroX := stats.NewMatrix(n, len(zeroNames))
	y := make([]float64, n)
	for i, r := range recs {
		y[i] = float64(r.Completed)
		ft := 0.0
		if r.FirstTime {
			ft = 1
		}
		cols := []float64{1, math.Sqrt(r.Disputes), math.Sqrt(r.Positive), math.Sqrt(r.Negative),
			math.Sqrt(r.MPosts), math.Sqrt(r.Initiated), math.Sqrt(r.Accepted)}
		if withFirstTime {
			cols = append(cols, ft)
		}
		cols = append(cols, r.LengthDays)
		for j, v := range cols {
			countX.Set(i, j, v)
		}
		zcols := []float64{1, math.Sqrt(r.Disputes), math.Sqrt(r.Negative)}
		if withFirstTime {
			zcols = append(zcols, ft)
		}
		zcols = append(zcols, r.LengthDays)
		for j, v := range zcols {
			zeroX.Set(i, j, v)
		}
	}
	return stats.ZIPRegression(countX, y, zeroX, countNames, zeroNames)
}
