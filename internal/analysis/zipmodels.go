package analysis

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/stats"
)

// ZIPUserRecord is one user's covariates and response for the era models
// of Tables 9 and 10.
type ZIPUserRecord struct {
	User       forum.UserID
	Completed  int // response: completed contracts the user was party to
	Disputes   float64
	Positive   float64
	Negative   float64
	MPosts     float64
	Initiated  float64
	Accepted   float64
	FirstTime  bool    // first era in which the user touched the contract system
	LengthDays float64 // days since first activity on the forum
}

// ZIPEraResult is one fitted era model with its sample description.
type ZIPEraResult struct {
	Era     dataset.Era
	Subset  string // "all", "first-time", or "existing"
	Model   *stats.ZIPResult
	Records int
}

// ZIPAllUsers fits Table 9: the all-users model for each era. SET-UP has
// no first-time covariate (everyone is a first-time user of the brand-new
// system).
func ZIPAllUsers(d *dataset.Dataset) ([]ZIPEraResult, error) {
	return zipAllUsersIdx(NewIndex(d))
}

func zipAllUsersIdx(ix *Index) ([]ZIPEraResult, error) {
	specs := make([]zipFitSpec, len(dataset.Eras))
	for i, e := range dataset.Eras {
		specs[i] = zipFitSpec{era: e, subset: "all", withFirstTime: e != dataset.EraSetup}
	}
	return fitZIPSpecs(ix, specs)
}

// ZIPSubgroups fits Table 10: first-time and existing users separately for
// STABLE and COVID-19.
func ZIPSubgroups(d *dataset.Dataset) ([]ZIPEraResult, error) {
	return zipSubgroupsIdx(NewIndex(d))
}

func zipSubgroupsIdx(ix *Index) ([]ZIPEraResult, error) {
	var specs []zipFitSpec
	for _, e := range []dataset.Era{dataset.EraStable, dataset.EraCovid} {
		for _, subset := range []string{"first-time", "existing"} {
			specs = append(specs, zipFitSpec{era: e, subset: subset})
		}
	}
	return fitZIPSpecs(ix, specs)
}

// zipFitSpec is one (era, subset) model of Tables 9/10.
type zipFitSpec struct {
	era           dataset.Era
	subset        string
	withFirstTime bool
}

// fitZIPSpecs runs the per-era fits concurrently. Each fit is
// deterministic (no RNG), so parallel execution only needs the results
// collected in spec order — including the first-error-in-order rule the
// sequential loops applied.
func fitZIPSpecs(ix *Index, specs []zipFitSpec) ([]ZIPEraResult, error) {
	out := make([]ZIPEraResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s zipFitSpec) {
			defer wg.Done()
			recs := zipRecords(ix, s.era, s.subset)
			model, err := fitZIP(recs, s.withFirstTime)
			if err != nil {
				if s.subset == "all" {
					errs[i] = fmt.Errorf("analysis: ZIP %v: %w", s.era, err)
				} else {
					errs[i] = fmt.Errorf("analysis: ZIP %v/%s: %w", s.era, s.subset, err)
				}
				return
			}
			out[i] = ZIPEraResult{Era: s.era, Subset: s.subset, Model: model, Records: len(recs)}
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// zipRecords builds per-user records for an era. Users of the contract
// system in the era are all makers and takers of contracts created then.
func zipRecords(ix *Index, e dataset.Era, subset string) []ZIPUserRecord {
	firstEra := ix.FirstEraOfUse()
	_, end := e.Span()
	recs := map[forum.UserID]*ZIPUserRecord{}
	get := func(u forum.UserID) *ZIPUserRecord {
		r, ok := recs[u]
		if !ok {
			r = &ZIPUserRecord{User: u, FirstTime: firstEra[u] == e}
			if user, okU := ix.D.Users[u]; okU {
				r.MPosts = float64(user.MarketplacePosts)
				first := user.FirstPost
				if first.IsZero() || user.Joined.Before(first) {
					first = user.Joined
				}
				days := end.Sub(first).Hours() / 24
				if days < 0 {
					days = 0
				}
				r.LengthDays = days
			}
			recs[u] = r
		}
		return r
	}
	// ix.InEra(e) is exactly the Created ∈ [start, end) filter: Validate
	// guarantees every Created falls inside the study window, so EraOf
	// bucketing and the span check agree.
	for _, c := range ix.InEra(e) {
		mr := get(c.Maker)
		tr := get(c.Taker)
		mr.Initiated++
		switch c.Status {
		case forum.StatusPending, forum.StatusDenied, forum.StatusExpired:
		default:
			tr.Accepted++
		}
		if c.IsComplete() {
			mr.Completed++
			tr.Completed++
		}
		if c.Status == forum.StatusDisputed {
			mr.Disputes++
			tr.Disputes++
		}
		switch c.TakerRating {
		case forum.RatingPositive:
			mr.Positive++
		case forum.RatingNegative:
			mr.Negative++
		}
		switch c.MakerRating {
		case forum.RatingPositive:
			tr.Positive++
		case forum.RatingNegative:
			tr.Negative++
		}
	}
	var out []ZIPUserRecord
	for _, r := range recs {
		switch subset {
		case "first-time":
			if !r.FirstTime {
				continue
			}
		case "existing":
			if r.FirstTime {
				continue
			}
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// fitZIP assembles the designs (square-root transforms on the skewed
// covariates, per the paper) and fits the zero-inflated Poisson model.
// The count model uses all covariates; the zero model uses disputes,
// negative ratings, the first-time flag (when present), and length.
func fitZIP(recs []ZIPUserRecord, withFirstTime bool) (*stats.ZIPResult, error) {
	n := len(recs)
	if n < 30 {
		return nil, fmt.Errorf("only %d records", n)
	}
	countNames := []string{
		"(Intercept)", "Disputes", "Positive Rating", "Negative Rating",
		"Marketplace Post Count", "No. of Initiated Contracts", "No. of Accepted Contracts",
	}
	zeroNames := []string{"(Intercept)", "Disputes", "Negative Rating"}
	if withFirstTime {
		countNames = append(countNames, "First-Time Contract User")
		zeroNames = append(zeroNames, "First-Time Contract User")
	}
	countNames = append(countNames, "Length")
	zeroNames = append(zeroNames, "Length")

	countX := stats.NewMatrix(n, len(countNames))
	zeroX := stats.NewMatrix(n, len(zeroNames))
	y := make([]float64, n)
	for i, r := range recs {
		y[i] = float64(r.Completed)
		ft := 0.0
		if r.FirstTime {
			ft = 1
		}
		cols := []float64{1, math.Sqrt(r.Disputes), math.Sqrt(r.Positive), math.Sqrt(r.Negative),
			math.Sqrt(r.MPosts), math.Sqrt(r.Initiated), math.Sqrt(r.Accepted)}
		if withFirstTime {
			cols = append(cols, ft)
		}
		cols = append(cols, r.LengthDays)
		for j, v := range cols {
			countX.Set(i, j, v)
		}
		zcols := []float64{1, math.Sqrt(r.Disputes), math.Sqrt(r.Negative)}
		if withFirstTime {
			zcols = append(zcols, ft)
		}
		zcols = append(zcols, r.LengthDays)
		for j, v := range zcols {
			zeroX.Set(i, j, v)
		}
	}
	return stats.ZIPRegression(countX, y, zeroX, countNames, zeroNames)
}
