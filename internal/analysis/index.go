package analysis

import (
	"runtime"
	"sync"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/textmine"
)

// Index is the shared, lazily materialised view of one immutable Dataset
// that every suite stage reads instead of re-deriving its own groupings.
// The paper's pipeline is ~29 longitudinal views over one fixed corpus,
// and before the index each view re-bucketed contracts by month, re-built
// the completed/public subsets, and — worst of all — re-parsed the same
// maker/taker obligation strings through the regex categoriser in five
// separate stages. Each derived group is built at most once per suite run,
// on first use, behind its own sync.Once, so concurrent stages share one
// construction and partial runs never pay for groups they don't touch.
//
// Everything an Index hands out is shared and must be treated as
// read-only; that is the same ownership discipline the stage DAG already
// imposes on Suite slots. Construction is deterministic: builders iterate
// d.Contracts in slice order (and the obligation table's worker pool
// writes fixed, disjoint ranges), so results are identical at any worker
// count.
type Index struct {
	// D is the underlying corpus; stages reach through the Index for it.
	D *dataset.Dataset

	monthsOnce       sync.Once
	byMonth          [dataset.NumMonths][]*forum.Contract
	completedByMonth [dataset.NumMonths][]*forum.Contract

	subsetsOnce     sync.Once
	completed       []*forum.Contract
	public          []*forum.Contract
	completedPublic []*forum.Contract

	erasOnce sync.Once
	inEra    [dataset.NumEras][]*forum.Contract

	usersOnce     sync.Once
	userContracts map[forum.UserID][]*forum.Contract
	firstEra      map[forum.UserID]dataset.Era

	obligOnce sync.Once
	oblig     map[forum.ContractID]*obligation

	moneyOnce sync.Once
	money     []*forum.Contract

	maxOnce    sync.Once
	maxCreated time.Time
}

// obligation is the memoized classification of one contract's maker and
// taker obligation text — the table that collapses five stages' worth of
// repeated textmine.Categorize/PaymentMethods calls into one pass.
type obligation struct {
	MakerCats    []textmine.Category
	TakerCats    []textmine.Category
	MakerMethods []textmine.Method
	TakerMethods []textmine.Method
}

// NewIndex wraps a dataset. Nothing is computed until a group is first
// requested.
func NewIndex(d *dataset.Dataset) *Index { return &Index{D: d} }

// ByMonth buckets contracts by creation month (shared; do not mutate).
func (ix *Index) ByMonth() [dataset.NumMonths][]*forum.Contract {
	ix.buildMonths()
	return ix.byMonth
}

// CompletedByMonth buckets completed contracts by completion month
// (falling back to creation month when the completion date is missing).
func (ix *Index) CompletedByMonth() [dataset.NumMonths][]*forum.Contract {
	ix.buildMonths()
	return ix.completedByMonth
}

func (ix *Index) buildMonths() {
	ix.monthsOnce.Do(func() {
		for _, c := range ix.D.Contracts {
			ix.byMonth[dataset.MonthOf(c.Created)] = append(ix.byMonth[dataset.MonthOf(c.Created)], c)
			if !c.IsComplete() {
				continue
			}
			at := c.Completed
			if at.IsZero() {
				at = c.Created
			}
			ix.completedByMonth[dataset.MonthOf(at)] = append(ix.completedByMonth[dataset.MonthOf(at)], c)
		}
	})
}

// Completed returns all fully completed contracts, in corpus order.
func (ix *Index) Completed() []*forum.Contract {
	ix.buildSubsets()
	return ix.completed
}

// Public returns all public contracts, in corpus order.
func (ix *Index) Public() []*forum.Contract {
	ix.buildSubsets()
	return ix.public
}

// CompletedPublic returns completed public contracts — the subset every
// obligation-text analysis runs on.
func (ix *Index) CompletedPublic() []*forum.Contract {
	ix.buildSubsets()
	return ix.completedPublic
}

func (ix *Index) buildSubsets() {
	ix.subsetsOnce.Do(func() {
		for _, c := range ix.D.Contracts {
			done := c.IsComplete()
			if done {
				ix.completed = append(ix.completed, c)
			}
			if c.Public {
				ix.public = append(ix.public, c)
				if done {
					ix.completedPublic = append(ix.completedPublic, c)
				}
			}
		}
	})
}

// InEra returns contracts created within era e, in corpus order.
func (ix *Index) InEra(e dataset.Era) []*forum.Contract {
	ix.erasOnce.Do(func() {
		for _, c := range ix.D.Contracts {
			era := dataset.EraOf(c.Created)
			ix.inEra[era] = append(ix.inEra[era], c)
		}
	})
	return ix.inEra[e]
}

// UserContracts maps each user to every contract they are party to (as
// maker or taker), in corpus order. A contract appears in both parties'
// lists.
func (ix *Index) UserContracts() map[forum.UserID][]*forum.Contract {
	ix.buildUsers()
	return ix.userContracts
}

// FirstEraOfUse maps each user to the era of their first contract-system
// activity — the map zipRecords used to rebuild on every one of its seven
// calls.
func (ix *Index) FirstEraOfUse() map[forum.UserID]dataset.Era {
	ix.buildUsers()
	return ix.firstEra
}

func (ix *Index) buildUsers() {
	ix.usersOnce.Do(func() {
		byUser := make(map[forum.UserID][]*forum.Contract)
		first := make(map[forum.UserID]dataset.Era)
		for _, c := range ix.D.Contracts {
			byUser[c.Maker] = append(byUser[c.Maker], c)
			if c.Taker != c.Maker {
				byUser[c.Taker] = append(byUser[c.Taker], c)
			}
			// Contracts are scanned in corpus order, not time order, so the
			// era of first use is the minimum era over the user's contracts.
			e := dataset.EraOf(c.Created)
			for _, u := range []forum.UserID{c.Maker, c.Taker} {
				if prev, ok := first[u]; !ok || e < prev {
					first[u] = e
				}
			}
		}
		ix.userContracts = byUser
		ix.firstEra = first
	})
}

// MakerCategories returns the memoized trading-activity categories of the
// contract's maker obligation (falling back to a direct parse for
// contracts outside the table — anything not completed-public).
func (ix *Index) MakerCategories(c *forum.Contract) []textmine.Category {
	if o := ix.obligationOf(c); o != nil {
		return o.MakerCats
	}
	return textmine.Categorize(c.MakerObligation)
}

// TakerCategories is MakerCategories for the taker side.
func (ix *Index) TakerCategories(c *forum.Contract) []textmine.Category {
	if o := ix.obligationOf(c); o != nil {
		return o.TakerCats
	}
	return textmine.Categorize(c.TakerObligation)
}

// MakerMethods returns the memoized payment methods mentioned in the
// contract's maker obligation.
func (ix *Index) MakerMethods(c *forum.Contract) []textmine.Method {
	if o := ix.obligationOf(c); o != nil {
		return o.MakerMethods
	}
	return textmine.PaymentMethods(c.MakerObligation)
}

// TakerMethods is MakerMethods for the taker side.
func (ix *Index) TakerMethods(c *forum.Contract) []textmine.Method {
	if o := ix.obligationOf(c); o != nil {
		return o.TakerMethods
	}
	return textmine.PaymentMethods(c.TakerObligation)
}

func (ix *Index) obligationOf(c *forum.Contract) *obligation {
	ix.buildObligations()
	return ix.oblig[c.ID]
}

// buildObligations classifies every completed public contract's maker and
// taker text in one pass — the only contracts any stage categorises; the
// rest carry no public obligation text. The pass is split across a small
// worker pool: workers fill fixed disjoint ranges of a pre-sized slice,
// so the resulting table is identical for every worker count.
func (ix *Index) buildObligations() {
	ix.obligOnce.Do(func() {
		cs := ix.CompletedPublic()
		entries := make([]obligation, len(cs))
		workers := runtime.GOMAXPROCS(0)
		if workers > len(cs) {
			workers = len(cs)
		}
		if workers > 1 {
			var wg sync.WaitGroup
			chunk := (len(cs) + workers - 1) / workers
			for lo := 0; lo < len(cs); lo += chunk {
				hi := lo + chunk
				if hi > len(cs) {
					hi = len(cs)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						entries[i] = classifyContract(cs[i])
					}
				}(lo, hi)
			}
			wg.Wait()
		} else {
			for i, c := range cs {
				entries[i] = classifyContract(c)
			}
		}
		tab := make(map[forum.ContractID]*obligation, len(cs))
		for i, c := range cs {
			tab[c.ID] = &entries[i]
		}
		ix.oblig = tab
	})
}

func classifyContract(c *forum.Contract) obligation {
	var o obligation
	o.MakerCats, o.MakerMethods = textmine.Classify(c.MakerObligation)
	o.TakerCats, o.TakerMethods = textmine.Classify(c.TakerObligation)
	return o
}

// MoneyContracts returns the completed public contracts classified into a
// money-movement activity (currency exchange, payments, or giftcard) on
// either side — the Table 4 / Figure 10 population.
func (ix *Index) MoneyContracts() []*forum.Contract {
	ix.moneyOnce.Do(func() {
		for _, c := range ix.CompletedPublic() {
			if isMoney(ix.MakerCategories(c)) || isMoney(ix.TakerCategories(c)) {
				ix.money = append(ix.money, c)
			}
		}
	})
	return ix.money
}

func isMoney(cats []textmine.Category) bool {
	for _, cat := range cats {
		switch cat {
		case textmine.CurrencyExchange, textmine.Payments, textmine.Giftcard:
			return true
		}
	}
	return false
}
