package analysis

import (
	"sync/atomic"
	"time"

	"turnup/internal/dataset"
	"turnup/internal/forum"
	"turnup/internal/textmine"
)

// Index is the shared view of one immutable Dataset that every suite
// stage reads instead of re-deriving its own groupings. The paper's
// pipeline is ~29 longitudinal views over one fixed corpus, and before
// the index each view re-bucketed contracts by month, re-built the
// completed/public subsets, and — worst of all — re-parsed the same
// maker/taker obligation strings through the regex categoriser in five
// separate stages.
//
// Since the columnar refactor the Index is a thin handle: the derived
// groups themselves (corpusGroups) are built from one scan of the
// dataset's columnar projection and cached on the Dataset, so distinct
// Index values over the same corpus — per report request, per suite run,
// per generation — share a single construction. An Index resolves its
// groups on first use and then pins them, so a handle never observes two
// different group sets.
//
// Everything an Index hands out is shared and must be treated as
// read-only; that is the same ownership discipline the stage DAG already
// imposes on Suite slots. Construction is deterministic: the group
// builder scans columns in corpus order (and the obligation table's
// worker pool writes fixed, disjoint ranges), so results are identical
// at any worker count.
type Index struct {
	// D is the underlying corpus; stages reach through the Index for it.
	D *dataset.Dataset

	g atomic.Pointer[corpusGroups]
}

// obligation is the memoized classification of one contract's maker and
// taker obligation text — the table that collapses five stages' worth of
// repeated textmine.Categorize/PaymentMethods calls into one pass. The
// bitmask forms mirror the slices over the canonical textmine orderings;
// union-style consumers OR them instead of building per-contract maps.
type obligation struct {
	MakerCats    []textmine.Category
	TakerCats    []textmine.Category
	MakerMethods []textmine.Method
	TakerMethods []textmine.Method

	makerCatMask  uint32
	takerCatMask  uint32
	makerMethMask uint32
	takerMethMask uint32
}

// NewIndex wraps a dataset. Nothing is computed until a group is first
// requested, and the underlying groups are shared with every other Index
// over the same corpus through the dataset's derived cache.
func NewIndex(d *dataset.Dataset) *Index { return &Index{D: d} }

// RebuildIndex returns an Index over a freshly built set of derived
// groups, bypassing — and not installing into — the dataset's shared
// cache. Reference paths use it when "from scratch" must mean exactly
// that: the incremental-index golden test compares an appended Index
// against a RebuildIndex result, which the shared cache would otherwise
// alias to the very groups under test.
func RebuildIndex(d *dataset.Dataset) *Index {
	ix := &Index{D: d}
	ix.g.Store(buildGroups(d))
	return ix
}

// groups resolves (and pins) the derived groups for this handle.
func (ix *Index) groups() *corpusGroups {
	if g := ix.g.Load(); g != nil {
		return g
	}
	g := sharedGroups(ix.D)
	ix.g.Store(g)
	return g
}

// ByMonth buckets contracts by creation month (shared; do not mutate).
func (ix *Index) ByMonth() [dataset.NumMonths][]*forum.Contract {
	return ix.groups().byMonth
}

// CompletedByMonth buckets completed contracts by completion month
// (falling back to creation month when the completion date is missing).
func (ix *Index) CompletedByMonth() [dataset.NumMonths][]*forum.Contract {
	return ix.groups().completedByMonth
}

// Completed returns all fully completed contracts, in corpus order.
func (ix *Index) Completed() []*forum.Contract {
	return ix.groups().completed
}

// Public returns all public contracts, in corpus order.
func (ix *Index) Public() []*forum.Contract {
	return ix.groups().public
}

// CompletedPublic returns completed public contracts — the subset every
// obligation-text analysis runs on.
func (ix *Index) CompletedPublic() []*forum.Contract {
	return ix.groups().completedPublic
}

// InEra returns contracts created within era e, in corpus order.
func (ix *Index) InEra(e dataset.Era) []*forum.Contract {
	return ix.groups().inEra[e]
}

// UserContracts maps each user to every contract they are party to (as
// maker or taker), in corpus order. A contract appears in both parties'
// lists.
func (ix *Index) UserContracts() map[forum.UserID][]*forum.Contract {
	return ix.groups().userContracts
}

// FirstEraOfUse maps each user to the era of their first contract-system
// activity — the map zipRecords used to rebuild on every one of its seven
// calls.
func (ix *Index) FirstEraOfUse() map[forum.UserID]dataset.Era {
	return ix.groups().firstEra
}

// MaxCreated returns the latest contract creation time in the corpus
// (zero when empty) — the watermark Append's in-order check compares new
// events against.
func (ix *Index) MaxCreated() time.Time {
	return ix.groups().maxCreated
}

// MakerCategories returns the memoized trading-activity categories of the
// contract's maker obligation (falling back to a direct parse for
// contracts outside the table — anything not completed-public).
func (ix *Index) MakerCategories(c *forum.Contract) []textmine.Category {
	if o := ix.obligationOf(c); o != nil {
		return o.MakerCats
	}
	return textmine.Categorize(c.MakerObligation)
}

// TakerCategories is MakerCategories for the taker side.
func (ix *Index) TakerCategories(c *forum.Contract) []textmine.Category {
	if o := ix.obligationOf(c); o != nil {
		return o.TakerCats
	}
	return textmine.Categorize(c.TakerObligation)
}

// MakerMethods returns the memoized payment methods mentioned in the
// contract's maker obligation.
func (ix *Index) MakerMethods(c *forum.Contract) []textmine.Method {
	if o := ix.obligationOf(c); o != nil {
		return o.MakerMethods
	}
	return textmine.PaymentMethods(c.MakerObligation)
}

// TakerMethods is MakerMethods for the taker side.
func (ix *Index) TakerMethods(c *forum.Contract) []textmine.Method {
	if o := ix.obligationOf(c); o != nil {
		return o.TakerMethods
	}
	return textmine.PaymentMethods(c.TakerObligation)
}

func (ix *Index) obligationOf(c *forum.Contract) *obligation {
	return ix.groups().obligations()[c.ID]
}

// categoryMask returns the union bitmask of both sides' categories,
// Uncategorised excluded — Table 5's per-activity membership test.
func (ix *Index) categoryMask(c *forum.Contract) uint32 {
	if o := ix.obligationOf(c); o != nil {
		return (o.makerCatMask | o.takerCatMask) &^ uncatMask
	}
	return (catMaskOf(textmine.Categorize(c.MakerObligation)) |
		catMaskOf(textmine.Categorize(c.TakerObligation))) &^ uncatMask
}

// methodMask returns the union bitmask of both sides' payment methods.
func (ix *Index) methodMask(c *forum.Contract) uint32 {
	if o := ix.obligationOf(c); o != nil {
		return o.makerMethMask | o.takerMethMask
	}
	return methMaskOf(textmine.PaymentMethods(c.MakerObligation)) |
		methMaskOf(textmine.PaymentMethods(c.TakerObligation))
}

// MoneyContracts returns the completed public contracts classified into a
// money-movement activity (currency exchange, payments, or giftcard) on
// either side — the Table 4 / Figure 10 population.
func (ix *Index) MoneyContracts() []*forum.Contract {
	return ix.groups().moneyContracts()
}

// classifyContract builds a full obligation entry for one contract — the
// incremental append path's per-new-contract classification.
func classifyContract(c *forum.Contract) obligation {
	var o obligation
	o.MakerCats, o.MakerMethods = textmine.Classify(c.MakerObligation)
	o.TakerCats, o.TakerMethods = textmine.Classify(c.TakerObligation)
	o.makerCatMask = catMaskOf(o.MakerCats)
	o.takerCatMask = catMaskOf(o.TakerCats)
	o.makerMethMask = methMaskOf(o.MakerMethods)
	o.takerMethMask = methMaskOf(o.TakerMethods)
	return o
}

func isMoney(cats []textmine.Category) bool {
	return catMaskOf(cats)&moneyMask != 0
}
