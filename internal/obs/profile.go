package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile at path and returns a stop function
// that finishes the profile and closes the file. The standard CLI wiring:
//
//	stop, err := obs.StartCPUProfile(*cpuprofile)
//	...
//	defer stop()
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile forces a GC (so the profile reflects live memory) and
// writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
