package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTree builds a fully deterministic span tree (fixed clock, no
// tracer), matching what a traced generate→analyse run produces in shape.
func goldenTree() *Span {
	t0 := time.Date(2020, 3, 11, 12, 0, 0, 0, time.UTC)
	month := &Span{
		Name: "month/2020-03", Start: t0.Add(time.Second), Stop: t0.Add(3 * time.Second),
		AllocBytes: 2048, Mallocs: 12,
		Attrs: []Attr{{Key: "contracts", Value: "490"}, {Key: "posts", Value: "1200"}},
	}
	era := &Span{
		Name: "era/COVID-19", Start: t0.Add(time.Second), Stop: t0.Add(5 * time.Second),
		AllocBytes: 4096, Mallocs: 40,
		Children: []*Span{month},
	}
	return &Span{
		Name: "hfrepro", Start: t0, Stop: t0.Add(10 * time.Second),
		AllocBytes: 8192, Mallocs: 100,
		Children: []*Span{era},
	}
}

func TestFlattenPathsAndDepth(t *testing.T) {
	recs := Flatten(goldenTree())
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	wantPaths := []string{"hfrepro", "hfrepro/era/COVID-19", "hfrepro/era/COVID-19/month/2020-03"}
	for i, r := range recs {
		if r.Path != wantPaths[i] {
			t.Errorf("record %d path = %q, want %q", i, r.Path, wantPaths[i])
		}
		if r.Depth != i {
			t.Errorf("record %d depth = %d, want %d", i, r.Depth, i)
		}
	}
	if recs[2].WallMS != 2000 {
		t.Errorf("month wall = %vms, want 2000", recs[2].WallMS)
	}
	if recs[2].Attrs["contracts"] != "490" {
		t.Errorf("month attrs = %v", recs[2].Attrs)
	}
}

// TestJSONGoldenRoundTrip checks the exporter against a committed golden
// file and that ReadJSON(WriteJSON(tree)) reproduces Flatten(tree) exactly.
func TestJSONGoldenRoundTrip(t *testing.T) {
	root := goldenTree()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON trace differs from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	recs, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, Flatten(root)) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", recs, Flatten(root))
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("expected decode error")
	}
}
