// Package obs is the observability substrate for the simulate→analyse
// pipeline: a nestable-span Tracer, a Registry of counters / gauges /
// histograms, text / JSON / Prometheus exporters, and thin runtime/pprof
// helpers for the CLIs.
//
// Everything is dependency-free (standard library only) and nil-safe: every
// method on *Tracer, *Span, *Registry, *Counter, *Gauge, and *Histogram is a
// no-op on a nil receiver, so instrumented code paths cost nothing beyond a
// nil check when observability is disabled. That zero-cost-when-disabled
// contract is what lets the hooks stay permanently threaded through
// market.Generate and analysis.RunSuite (see DESIGN.md).
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed region of the pipeline. Spans nest: children are the
// regions opened (and closed) while this span was the innermost open one.
// Allocation figures are runtime.ReadMemStats deltas between Start and End,
// so a parent's numbers include its children's.
type Span struct {
	Name       string
	Start      time.Time
	Stop       time.Time
	AllocBytes int64 // MemStats.TotalAlloc delta over the span
	Mallocs    int64 // MemStats.Mallocs delta over the span
	Attrs      []Attr
	Children   []*Span

	parent      *Span
	tracer      *Tracer
	startAlloc  uint64
	startMalloc uint64
}

// Wall is the span's wall-clock duration (zero until ended).
func (s *Span) Wall() time.Duration {
	if s == nil || s.Stop.IsZero() {
		return 0
	}
	return s.Stop.Sub(s.Start)
}

// SetAttr attaches (or overwrites) a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tracer.lock()
	defer s.tracer.unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer annotation.
func (s *Span) SetInt(key string, v int) { s.SetAttr(key, itoa(v)) }

// Ended reports whether End has been called.
func (s *Span) Ended() bool { return s != nil && !s.Stop.IsZero() }

// End ends the span. Spans are normally ended innermost-first; ending a
// span that is not the tracer's current one also ends every still-open span
// nested inside it, so a forgotten child cannot corrupt the stack.
func (s *Span) End() { s.endAt(time.Now()) }

func (s *Span) endAt(now time.Time) {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if !s.Stop.IsZero() {
		return // already ended
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	// Spans opened with StartChild live off the cursor stack; ending one
	// must not pop (or close) unrelated open spans.
	onStack := false
	for cur := t.cur; cur != nil; cur = cur.parent {
		if cur == s {
			onStack = true
			break
		}
	}
	if !onStack {
		s.closeTree(now, &m)
		return
	}
	// Close any still-open descendants first.
	for cur := t.cur; cur != nil && cur != s; cur = cur.parent {
		cur.close(now, &m)
	}
	s.close(now, &m)
	t.cur = s.parent
}

// closeTree closes the span and every still-open span in its subtree;
// caller holds the tracer lock.
func (s *Span) closeTree(now time.Time, m *runtime.MemStats) {
	for _, c := range s.Children {
		c.closeTree(now, m)
	}
	s.close(now, m)
}

// close finalises the span's fields; caller holds the tracer lock.
func (s *Span) close(now time.Time, m *runtime.MemStats) {
	if !s.Stop.IsZero() {
		return
	}
	s.Stop = now
	s.AllocBytes = int64(m.TotalAlloc - s.startAlloc)
	s.Mallocs = int64(m.Mallocs - s.startMalloc)
}

// Tracer records a tree of nested spans. A single Tracer is intended for
// the (sequential) pipeline; its methods are nonetheless mutex-guarded so
// stray concurrent attribute writes are safe.
type Tracer struct {
	mu   sync.Mutex
	root *Span
	cur  *Span
}

// NewTracer starts a tracer whose root span carries the given name (use the
// binary or run name). The root span is open until Finish.
func NewTracer(name string) *Tracer {
	t := &Tracer{}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	t.root = &Span{
		Name:        name,
		Start:       time.Now(),
		tracer:      t,
		startAlloc:  m.TotalAlloc,
		startMalloc: m.Mallocs,
	}
	t.cur = t.root
	return t
}

// Start opens a child span under the innermost open span and returns it.
// On a nil tracer it returns nil, on which every Span method is a no-op.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := t.cur
	if parent == nil || !parent.Stop.IsZero() {
		parent = t.root
	}
	s := &Span{
		Name:        name,
		Start:       time.Now(),
		parent:      parent,
		tracer:      t,
		startAlloc:  m.TotalAlloc,
		startMalloc: m.Mallocs,
	}
	parent.Children = append(parent.Children, s)
	t.cur = s
	return s
}

// StartChild opens a child span directly under s without moving the
// tracer's innermost-open cursor. It is the concurrency-safe span
// constructor: parallel workers each open their stage span under a shared
// parent, so sibling spans never nest inside one another the way
// cursor-based Start would make them. The child is ended with End.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{
		Name:        name,
		Start:       time.Now(),
		parent:      s,
		tracer:      t,
		startAlloc:  m.TotalAlloc,
		startMalloc: m.Mallocs,
	}
	s.Children = append(s.Children, c)
	return c
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Finish ends every still-open span (root included) and returns the root.
func (t *Tracer) Finish() *Span {
	if t == nil {
		return nil
	}
	t.root.endAt(time.Now())
	return t.root
}

func (t *Tracer) lock() {
	if t != nil {
		t.mu.Lock()
	}
}

func (t *Tracer) unlock() {
	if t != nil {
		t.mu.Unlock()
	}
}

// itoa is strconv.Itoa without the import weight in hot paths.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
