package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this is the data-race check the
// registry's concurrency contract promises.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total").Inc()
				r.Gauge("last_worker").Set(float64(w))
				r.Histogram("latency").Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("latency").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if g := r.Gauge("last_worker").Value(); g < 0 || g >= workers {
		t.Errorf("gauge = %v out of range", g)
	}
}

// TestGaugeAdd checks the CAS-loop increment form: concurrent +1/-1
// pairs must cancel exactly (the analysis_stages_inflight pattern).
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v after balanced adds, want 0", got)
	}
	g.Add(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 0..100 inclusive: quantiles are exact order statistics.
	for i := 0; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 25}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	h2 := &Histogram{}
	h2.Observe(0)
	h2.Observe(10)
	if got := h2.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	if h.Count() != 101 || math.Abs(h.Sum()-5050) > 1e-9 || math.Abs(h.Mean()-50) > 1e-9 {
		t.Errorf("count/sum/mean = %d/%v/%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Max() != 100 {
		t.Errorf("max = %v", h.Max())
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("g").Set(3.5)
	r.Histogram("h").Observe(7)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	wantOrder := []string{"a_total", "b_total", "g", "h"}
	for i, m := range snap {
		if m.Name != wantOrder[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, m.Name, wantOrder[i])
		}
	}
	if snap[3].Kind != "histogram" || snap[3].Count != 1 || snap[3].Value != 7 {
		t.Errorf("histogram metric = %+v", snap[3])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("contracts_total").Add(12)
	r.Gauge(`sweep_wall_seconds{seed="1"}`).Set(0.25)
	r.Histogram("stage_seconds").Observe(1)
	r.Histogram("stage_seconds").Observe(3)
	var b strings.Builder
	WritePrometheus(&b, r)
	out := b.String()
	for _, want := range []string{
		"# TYPE contracts_total counter",
		"contracts_total 12",
		"# TYPE sweep_wall_seconds gauge",
		`sweep_wall_seconds{seed="1"} 0.25`,
		"# TYPE stage_seconds summary",
		`stage_seconds{quantile="0.5"} 2`,
		"stage_seconds_sum 4",
		"stage_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}
