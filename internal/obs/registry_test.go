package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this is the data-race check the
// registry's concurrency contract promises.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total").Inc()
				r.Gauge("last_worker").Set(float64(w))
				r.Histogram("latency").Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("latency").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if g := r.Gauge("last_worker").Value(); g < 0 || g >= workers {
		t.Errorf("gauge = %v out of range", g)
	}
}

// TestGaugeAdd checks the CAS-loop increment form: concurrent +1/-1
// pairs must cancel exactly (the analysis_stages_inflight pattern).
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v after balanced adds, want 0", got)
	}
	g.Add(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 0..100 inclusive: count/sum/mean/min/max are exact, quantile
	// estimates land within the log-bucket resolution, and q=0 / q=1 are
	// pinned to the exact extremes.
	for i := 0; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want exact min 0", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v, want exact max 100", got)
	}
	for _, c := range []struct{ q, want float64 }{{0.25, 25}, {0.5, 50}, {0.9, 90}, {0.99, 99}} {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 0.15*c.want {
			t.Errorf("Quantile(%v) = %v, want %v ±15%%", c.q, got, c.want)
		}
	}
	if h.Count() != 101 || math.Abs(h.Sum()-5050) > 1e-9 || math.Abs(h.Mean()-50) > 1e-9 {
		t.Errorf("count/sum/mean = %d/%v/%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 0 || h.Max() != 100 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	// A single observation reports itself for every quantile (clamping).
	h1 := &Histogram{}
	h1.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h1.Quantile(q); got != 7 {
			t.Errorf("single-value Quantile(%v) = %v, want 7", q, got)
		}
	}
}

// TestHistogramQuantileAccuracy checks the bucketed estimator against
// known distributions: uniform and exponential samples at latency-like
// magnitudes must estimate p50/p90/p95/p99 within the advertised bucket
// resolution (well under 15% relative error).
func TestHistogramQuantileAccuracy(t *testing.T) {
	// Uniform over [1ms, 1s]: true q-quantile is 0.001 + q*0.999.
	u := &Histogram{}
	const n = 100000
	for i := 0; i < n; i++ {
		u.Observe(0.001 + 0.999*float64(i)/float64(n-1))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := 0.001 + q*0.999
		if got := u.Quantile(q); math.Abs(got-want)/want > 0.15 {
			t.Errorf("uniform Quantile(%v) = %v, want %v ±15%%", q, got, want)
		}
	}
	// Exponential with mean 50ms (inverse-CDF sampled): true q-quantile
	// is -mean*ln(1-q). Heavy right tail exercises the high buckets.
	e := &Histogram{}
	const mean = 0.050
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		e.Observe(-mean * math.Log(1-p))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := -mean * math.Log(1-q)
		if got := e.Quantile(q); math.Abs(got-want)/want > 0.15 {
			t.Errorf("exponential Quantile(%v) = %v, want %v ±15%%", q, got, want)
		}
	}
	// Out-of-range observations land in the underflow/overflow buckets
	// and still answer exact min/max.
	o := &Histogram{}
	o.Observe(0)
	o.Observe(1e9)
	if o.Min() != 0 || o.Max() != 1e9 || o.Count() != 2 {
		t.Errorf("extremes: min=%v max=%v count=%d", o.Min(), o.Max(), o.Count())
	}
	if got := o.Quantile(1); got != 1e9 {
		t.Errorf("overflow Quantile(1) = %v, want 1e9", got)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("g").Set(3.5)
	r.Histogram("h").Observe(7)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	wantOrder := []string{"a_total", "b_total", "g", "h"}
	for i, m := range snap {
		if m.Name != wantOrder[i] {
			t.Errorf("snapshot[%d] = %s, want %s", i, m.Name, wantOrder[i])
		}
	}
	if snap[3].Kind != "histogram" || snap[3].Count != 1 || snap[3].Value != 7 {
		t.Errorf("histogram metric = %+v", snap[3])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("contracts_total").Add(12)
	r.Gauge(`sweep_wall_seconds{seed="1"}`).Set(0.25)
	r.Gauge(`sweep_wall_seconds{seed="2"}`).Set(0.5)
	r.Histogram("stage_seconds").Observe(1)
	r.Histogram("stage_seconds").Observe(3)
	r.Histogram(`req_seconds{route="report",status="200"}`).Observe(0.02)
	var b strings.Builder
	WritePrometheus(&b, r)
	out := b.String()
	for _, want := range []string{
		"# TYPE contracts_total counter",
		"contracts_total 12",
		"# TYPE sweep_wall_seconds gauge",
		`sweep_wall_seconds{seed="1"} 0.25`,
		`sweep_wall_seconds{seed="2"} 0.5`,
		"# TYPE stage_seconds summary",
		`stage_seconds{quantile="0.5"} `,
		`stage_seconds{quantile="0.99"} `,
		"stage_seconds_sum 4",
		"stage_seconds_count 2",
		// Labelled histograms keep their labels on every summary sample.
		`req_seconds{route="report",status="200",quantile="0.5"} `,
		`req_seconds_sum{route="report",status="200"} 0.02`,
		`req_seconds_count{route="report",status="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
	// One # TYPE line per base name, however many labelled series share it.
	if got := strings.Count(out, "# TYPE sweep_wall_seconds gauge"); got != 1 {
		t.Errorf("TYPE line for sweep_wall_seconds appears %d times, want 1:\n%s", got, out)
	}
}
