package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Record is one span flattened for the JSON exporter. Path is the
// slash-joined chain of span names from the root, so a flat list of records
// preserves the tree.
type Record struct {
	Path       string            `json:"path"`
	Name       string            `json:"name"`
	Depth      int               `json:"depth"`
	Start      time.Time         `json:"start"`
	WallMS     float64           `json:"wall_ms"`
	AllocBytes int64             `json:"alloc_bytes"`
	Mallocs    int64             `json:"mallocs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Flatten converts a span tree into depth-first records.
func Flatten(root *Span) []Record {
	var out []Record
	var walk func(s *Span, prefix string, depth int)
	walk = func(s *Span, prefix string, depth int) {
		if s == nil {
			return
		}
		path := s.Name
		if prefix != "" {
			path = prefix + "/" + s.Name
		}
		rec := Record{
			Path:       path,
			Name:       s.Name,
			Depth:      depth,
			Start:      s.Start,
			WallMS:     float64(s.Wall()) / float64(time.Millisecond),
			AllocBytes: s.AllocBytes,
			Mallocs:    s.Mallocs,
		}
		if len(s.Attrs) > 0 {
			rec.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				rec.Attrs[a.Key] = a.Value
			}
		}
		out = append(out, rec)
		for _, c := range s.Children {
			walk(c, path, depth+1)
		}
	}
	walk(root, "", 0)
	return out
}

// WriteJSON writes the span tree as an indented flat JSON array of Records
// (the results/trace.json format).
func WriteJSON(w io.Writer, root *Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Flatten(root))
}

// ReadJSON parses a trace previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("obs: decoding trace: %w", err)
	}
	return recs, nil
}

// WriteText renders the span tree as an indented report: wall time,
// allocation delta, and attributes per span.
func WriteText(w io.Writer, root *Span) {
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		if s == nil {
			return
		}
		var attrs strings.Builder
		for _, a := range s.Attrs {
			fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintf(w, "%s%-*s %10s %12s%s\n",
			strings.Repeat("  ", depth),
			48-2*depth, s.Name,
			fmtDuration(s.Wall()),
			fmtBytes(s.AllocBytes),
			attrs.String())
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

// fmtDuration renders a wall time compactly (µs → s scale).
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtBytes renders an allocation delta compactly.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// WritePrometheus dumps the registry in the Prometheus text exposition
// format: counters and gauges as single samples, histograms in summary
// style (quantile-labelled samples plus _sum and _count). Labelled series
// (registry names like `seconds{route="r"}`) keep their labels on every
// sample — the quantile label is merged into the existing set — and share
// one # TYPE line per base name.
func WritePrometheus(w io.Writer, r *Registry) {
	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, m := range r.Snapshot() {
		base, labels := promName(m.Name), promLabels(m.Name)
		switch m.Kind {
		case "counter", "gauge":
			writeType(base, m.Kind)
			fmt.Fprintf(w, "%s %s\n", m.Name, promFloat(m.Value))
		case "histogram":
			writeType(base, "summary")
			for i, q := range []string{"0.5", "0.9", "0.95", "0.99"} {
				ql := fmt.Sprintf("quantile=%q", q)
				if labels != "" {
					ql = labels + "," + ql
				}
				fmt.Fprintf(w, "%s{%s} %s\n", base, ql, promFloat(m.Quantiles[i]))
			}
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, promFloat(m.Value))
			fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, m.Count)
		}
	}
}

// promName strips any {label} suffix to the bare metric name.
func promName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// promLabels returns the label body of a `name{labels}` metric name
// (without braces), or "" when the name carries no labels.
func promLabels(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
