package obs

import (
	"compress/gzip"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRuntimeCollectorRegistersGauges: the synchronous first sample must
// register every gauge before StartRuntimeCollector returns, stop must be
// idempotent, and sampled values must be sane.
func TestRuntimeCollectorRegistersGauges(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeCollector(reg, time.Hour) // ticker never fires in-test
	defer stop()
	for _, name := range []string{
		"runtime_goroutines",
		"runtime_gomaxprocs",
		"runtime_heap_alloc_bytes",
		"runtime_heap_objects",
		"runtime_gc_runs_total",
		"runtime_gc_pause_total_seconds",
	} {
		if v := reg.Gauge(name).Value(); v < 0 {
			t.Errorf("gauge %s = %v, want >= 0", name, v)
		}
	}
	if v := reg.Gauge("runtime_goroutines").Value(); v < 1 {
		t.Errorf("runtime_goroutines = %v, want >= 1", v)
	}
	if v := reg.Gauge("runtime_gomaxprocs").Value(); v < 1 {
		t.Errorf("runtime_gomaxprocs = %v, want >= 1", v)
	}
	if v := reg.Gauge("runtime_heap_alloc_bytes").Value(); v <= 0 {
		t.Errorf("runtime_heap_alloc_bytes = %v, want > 0", v)
	}
	stop()
	stop() // second call must not panic
	if StartRuntimeCollector(nil, time.Second) == nil {
		t.Error("nil registry must still return a stop func")
	}
}

func TestRuntimeCollectorTicks(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeCollector(reg, time.Millisecond)
	defer stop()
	g := reg.Gauge("runtime_goroutines")
	deadline := time.After(2 * time.Second)
	for g.Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("collector never sampled")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestMetricsHandlerContentTypes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total").Add(3)
	reg.Histogram("lat_seconds").Observe(0.5)
	h := MetricsHandler(reg)

	// Prometheus text by default.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text Content-Type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "ops_total 3") {
		t.Errorf("prometheus body missing counter:\n%s", rr.Body.String())
	}

	// ?format=json switches to the Snapshot array.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	if body := rr.Body.String(); !strings.Contains(body, `"ops_total"`) || !strings.Contains(body, `"histogram"`) {
		t.Errorf("json body:\n%s", body)
	}

	// Accept-Encoding: gzip compresses either form.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if ce := rr.Header().Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	gz, err := gzip.NewReader(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(plain), "ops_total 3") {
		t.Errorf("gzipped body missing counter:\n%s", plain)
	}
}
