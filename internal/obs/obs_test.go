package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTracer("root")
	a := tr.Start("a")
	a1 := tr.Start("a1")
	a1.End()
	a2 := tr.Start("a2")
	a2.End()
	a.End()
	b := tr.Start("b")
	b.End()
	root := tr.Finish()

	if root.Name != "root" || len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	if root.Children[0] != a || root.Children[1] != b {
		t.Fatal("children out of creation order")
	}
	if len(a.Children) != 2 || a.Children[0].Name != "a1" || a.Children[1].Name != "a2" {
		t.Fatalf("a children = %v", a.Children)
	}
	if len(b.Children) != 0 {
		t.Fatal("b should be a leaf")
	}
	for _, s := range []*Span{root, a, a1, a2, b} {
		if !s.Ended() {
			t.Errorf("span %s not ended", s.Name)
		}
		if s.Wall() < 0 {
			t.Errorf("span %s negative wall time", s.Name)
		}
	}
	if a.Wall() < a1.Wall()+a2.Wall()-time.Millisecond {
		t.Errorf("parent wall %v shorter than children %v+%v", a.Wall(), a1.Wall(), a2.Wall())
	}
}

func TestEndClosesOpenDescendants(t *testing.T) {
	tr := NewTracer("root")
	outer := tr.Start("outer")
	inner := tr.Start("inner") // deliberately never ended directly
	outer.End()
	if !inner.Ended() {
		t.Fatal("ending the outer span should close the open inner span")
	}
	next := tr.Start("next")
	next.End()
	root := tr.Finish()
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (outer, next)", len(root.Children))
	}
	if root.Children[1].Name != "next" {
		t.Fatal("span after recovery attached to the wrong parent")
	}
}

func TestSpanAttrs(t *testing.T) {
	tr := NewTracer("root")
	s := tr.Start("s")
	s.SetAttr("k", "v1")
	s.SetAttr("k", "v2") // overwrite
	s.SetInt("n", 42)
	s.End()
	if len(s.Attrs) != 2 {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	if s.Attrs[0] != (Attr{"k", "v2"}) || s.Attrs[1] != (Attr{"n", "42"}) {
		t.Fatalf("attrs = %v", s.Attrs)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All of these must not panic.
	s.SetAttr("k", "v")
	s.SetInt("n", 1)
	s.End()
	if s.Wall() != 0 || s.Ended() {
		t.Fatal("nil span should report zero state")
	}
	if tr.Finish() != nil || tr.Root() != nil {
		t.Fatal("nil tracer should finish to nil")
	}
}

// TestNilRegistryIsNoOp pins the zero-cost-when-disabled contract on
// EVERY metric method — instrumented code (the analysis Values stage, the
// scheduler's in-flight gauge) calls these without a nil check, so each
// one must be safe on the nil receivers a nil *Registry hands out.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(1)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("nil registry metrics should read zero")
	}
	if r.Histogram("h").Sum() != 0 || r.Histogram("h").Mean() != 0 ||
		r.Histogram("h").Max() != 0 || r.Histogram("h").Quantile(0.5) != 0 {
		t.Fatal("nil histogram summaries should read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

// TestStartChildDetachedSpans pins the scheduler's span constructor:
// children opened with StartChild attach to the given parent (never to
// each other), ending one does not disturb the cursor stack, and
// cursor-based Start keeps working alongside.
func TestStartChildDetachedSpans(t *testing.T) {
	tr := NewTracer("root")
	parent := tr.Start("parent")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := parent.StartChild("stage")
			c.SetInt("worker", i)
			c.End()
		}(i)
	}
	wg.Wait()

	// The cursor is still at parent: a stacked Start lands under it.
	stacked := tr.Start("stacked")
	stacked.End()
	parent.End()
	root := tr.Finish()

	if len(parent.Children) != 9 {
		t.Fatalf("parent children = %d, want 8 detached + 1 stacked", len(parent.Children))
	}
	for _, c := range parent.Children {
		if !c.Ended() {
			t.Errorf("child %s not ended", c.Name)
		}
		if len(c.Children) != 0 {
			t.Errorf("sibling %s nested under another sibling", c.Name)
		}
	}
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(root.Children))
	}

	// Nil parents propagate: StartChild on a nil span is a no-op span.
	var nilSpan *Span
	c := nilSpan.StartChild("x")
	if c != nil {
		t.Fatal("StartChild on nil span returned a span")
	}
	c.SetAttr("k", "v")
	c.End()
}

func TestTracerAllocationDeltas(t *testing.T) {
	tr := NewTracer("root")
	s := tr.Start("alloc")
	sink = make([]byte, 1<<20)
	s.End()
	if s.AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= %d", s.AllocBytes, 1<<20)
	}
	if s.Mallocs < 1 {
		t.Errorf("Mallocs = %d, want >= 1", s.Mallocs)
	}
}

var sink []byte

func TestWriteTextRendersTree(t *testing.T) {
	tr := NewTracer("run")
	g := tr.Start("generate")
	tr.Start("month").End()
	g.End()
	root := tr.Finish()
	var b strings.Builder
	WriteText(&b, root)
	out := b.String()
	for _, want := range []string{"run", "generate", "month", "  generate", "    month"} {
		if !strings.Contains(out, want) {
			t.Errorf("text tree missing %q:\n%s", want, out)
		}
	}
}
