package obs

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
)

// MetricsHandler serves the registry — the /metrics endpoint of hfserved.
// The default body is the Prometheus text exposition; `?format=json` (or
// an Accept header naming application/json) switches to the Snapshot as a
// JSON array. Both forms carry an explicit Content-Type and are gzipped
// when the client advertises Accept-Encoding: gzip — per-route histogram
// expositions grow wide enough under load for that to matter. `?gc=1`
// forces a garbage collection and a fresh runtime sample before the
// snapshot, so runtime_heap_alloc_bytes reflects live bytes as of this
// scrape rather than floating garbage as of the collector's last tick —
// the reading the load harness's heap-ceiling assertion gates on. Each
// request renders a fresh Snapshot, so the handler is safe to mount once
// and scrape forever; a nil registry serves an empty (but valid)
// exposition.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("gc") == "1" {
			runtime.GC()
			SampleRuntime(r)
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		var out io.Writer = w
		if strings.Contains(req.Header.Get("Accept-Encoding"), "gzip") {
			w.Header().Set("Content-Encoding", "gzip")
			gz := gzip.NewWriter(w)
			defer gz.Close()
			out = gz
		}
		if wantJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		WritePrometheus(out, r)
	})
}
