package obs

import "net/http"

// MetricsHandler serves the registry in the Prometheus text exposition
// format — the /metrics endpoint of hfserved. Each request renders a fresh
// Snapshot, so the handler is safe to mount once and scrape forever; a nil
// registry serves an empty (but valid) exposition.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
}
