package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2020, 3, 11, 12, 0, 0, 0, time.UTC)
}

func TestTextLoggerLine(t *testing.T) {
	var b strings.Builder
	l := NewTextLogger(&b)
	l.now = fixedNow
	l.Log("request",
		F("method", "GET"),
		F("route", "report/{section}"),
		F("status", 200),
		F("dur", 12500*time.Microsecond),
		F("note", "two words"),
	)
	want := `time=2020-03-11T12:00:00Z event=request method=GET route=report/{section} status=200 dur=12.5ms note="two words"` + "\n"
	if got := b.String(); got != want {
		t.Errorf("text line:\n got %q\nwant %q", got, want)
	}
}

// TestJSONLoggerShape parses the emitted line back and checks every field
// arrives with its type intact — the access-log JSON contract.
func TestJSONLoggerShape(t *testing.T) {
	var b strings.Builder
	l := NewJSONLogger(&b)
	l.now = fixedNow
	l.Log("request",
		F("id", "abc-000001"),
		F("status", 200),
		F("bytes", int64(512)),
		F("dur_ms", 1.5),
	)
	line := b.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("line not newline-terminated: %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	for k, want := range map[string]any{
		"time":   "2020-03-11T12:00:00Z",
		"event":  "request",
		"id":     "abc-000001",
		"status": 200.0,
		"bytes":  512.0,
		"dur_ms": 1.5,
	} {
		if m[k] != want {
			t.Errorf("field %q = %#v, want %#v", k, m[k], want)
		}
	}
	// Field order is stable: time and event lead.
	if !strings.HasPrefix(line, `{"time":"2020-03-11T12:00:00Z","event":"request"`) {
		t.Errorf("line does not lead with time/event: %s", line)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var b strings.Builder
	if l, err := NewLogger(&b, "text"); err != nil || l == nil || l.json {
		t.Errorf("text: %v %+v", err, l)
	}
	if l, err := NewLogger(&b, "json"); err != nil || l == nil || !l.json {
		t.Errorf("json: %v %+v", err, l)
	}
	if l, err := NewLogger(&b, "none"); err != nil || l != nil {
		t.Errorf("none: %v %+v", err, l)
	}
	if _, err := NewLogger(&b, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestLoggerNilAndConcurrent: nil loggers are no-ops, and concurrent Log
// calls never interleave within a line (run under -race).
func TestLoggerNilAndConcurrent(t *testing.T) {
	var nilLogger *Logger
	nilLogger.Log("ignored", F("k", "v")) // must not panic

	var b syncBuffer
	l := NewJSONLogger(&b)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Log("e", F("worker", w), F("i", i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("lines = %d, want 800", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved line %q: %v", line, err)
		}
	}
}

// syncBuffer is a mutex-guarded Builder: the logger serialises writers,
// but the test's final read still needs its own synchronisation.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
