package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Field is one key/value pair on a structured log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field — the call-site shorthand the access log uses:
//
//	logger.Log("request", obs.F("method", "GET"), obs.F("status", 200))
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes structured log lines in either logfmt-style key=value text
// or one JSON object per line. It is the obs-layer logging facility: like
// every other type in this package it is nil-safe (Log on a nil *Logger is
// a no-op, so callers thread it unconditionally) and concurrency-safe (one
// mutex serialises lines, so concurrent requests never interleave bytes).
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
	now  func() time.Time // test hook; nil means time.Now
}

// NewTextLogger returns a Logger emitting key=value lines to w.
func NewTextLogger(w io.Writer) *Logger { return &Logger{w: w} }

// NewJSONLogger returns a Logger emitting one JSON object per line to w.
func NewJSONLogger(w io.Writer) *Logger { return &Logger{w: w, json: true} }

// NewLogger builds a Logger for format "text" or "json" ("none" and ""
// return nil, on which Log is a no-op — the -log-format flag contract).
func NewLogger(w io.Writer, format string) (*Logger, error) {
	switch format {
	case "text":
		return NewTextLogger(w), nil
	case "json":
		return NewJSONLogger(w), nil
	case "none", "":
		return nil, nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text, json, or none)", format)
}

// Log writes one line: a UTC RFC3339 timestamp, the event name, and the
// fields in the order given.
func (l *Logger) Log(event string, fields ...Field) {
	if l == nil {
		return
	}
	nowf := l.now
	if nowf == nil {
		nowf = time.Now
	}
	ts := nowf().UTC().Format(time.RFC3339Nano)

	var b strings.Builder
	if l.json {
		b.WriteString(`{"time":`)
		b.WriteString(jsonValue(ts))
		b.WriteString(`,"event":`)
		b.WriteString(jsonValue(event))
		for _, f := range fields {
			b.WriteByte(',')
			b.WriteString(jsonValue(f.Key))
			b.WriteByte(':')
			b.WriteString(jsonValue(f.Value))
		}
		b.WriteString("}\n")
	} else {
		b.WriteString("time=")
		b.WriteString(ts)
		b.WriteString(" event=")
		b.WriteString(textValue(event))
		for _, f := range fields {
			b.WriteByte(' ')
			b.WriteString(f.Key)
			b.WriteByte('=')
			b.WriteString(textValue(f.Value))
		}
		b.WriteByte('\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String())
}

// jsonValue marshals v for the JSON line; marshal failures degrade to the
// quoted fmt rendering rather than dropping the field.
func jsonValue(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return string(b)
}

// textValue renders v for a key=value line, quoting strings that would
// break tokenisation (spaces, quotes, equals, empties).
func textValue(v any) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case time.Duration:
		s = t.String()
	case float64:
		s = strconv.FormatFloat(t, 'g', -1, 64)
	default:
		s = fmt.Sprint(v)
	}
	if s == "" || strings.ContainsAny(s, " \"=\n\t") {
		return strconv.Quote(s)
	}
	return s
}
