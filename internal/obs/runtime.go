package obs

import (
	"runtime"
	"sync"
	"time"
)

// StartRuntimeCollector samples runtime health into gauges on a ticker and
// returns a stop function (idempotent; it blocks until the sampling
// goroutine exits). One sample is taken synchronously before returning, so
// every gauge is registered — and scrapeable — the moment the collector
// starts. A nil registry returns a no-op stop; every <= 0 defaults to 5s.
//
// Gauges: runtime_goroutines, runtime_gomaxprocs, runtime_heap_alloc_bytes,
// runtime_heap_objects, runtime_gc_runs_total, runtime_gc_pause_total_seconds,
// and runtime_gc_last_pause_seconds. Together with the serve-layer request
// histograms they answer the saturation questions a load run raises: was
// the process goroutine-bound, heap-bound, or GC-bound while p99 moved?
func StartRuntimeCollector(reg *Registry, every time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	sample := func() { SampleRuntime(reg) }
	sample()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// SampleRuntime takes one synchronous runtime sample into reg's gauges —
// the collector's tick body, exported so /metrics?gc=1 can serve a
// fresh-as-of-now heap reading instead of one up to a tick stale (the
// load harness's end-of-run heap assertion needs the former). A nil
// registry is a no-op.
func SampleRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("runtime_goroutines").Set(float64(runtime.NumGoroutine()))
	reg.Gauge("runtime_gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	reg.Gauge("runtime_heap_alloc_bytes").Set(float64(m.HeapAlloc))
	reg.Gauge("runtime_heap_objects").Set(float64(m.HeapObjects))
	reg.Gauge("runtime_gc_runs_total").Set(float64(m.NumGC))
	reg.Gauge("runtime_gc_pause_total_seconds").Set(float64(m.PauseTotalNs) / 1e9)
	if m.NumGC > 0 {
		reg.Gauge("runtime_gc_last_pause_seconds").Set(float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9)
	}
}
