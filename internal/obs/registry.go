package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric, safe for concurrent
// use. All methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta to the gauge — the form in-flight style gauges
// need when increments and decrements race across goroutines.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: fixed log-spaced boundaries covering
// 1e-9 .. 1e6 (nanoseconds to ~11 days when observing seconds) at ten
// buckets per decade, so every histogram costs a constant ~1.2 KiB no
// matter how many observations it absorbs. Ten buckets per decade bound
// the relative width of one bucket at 10^0.1 ≈ 1.26, which — combined
// with geometric interpolation inside the bucket and clamping to the
// exact observed min/max — keeps quantile estimates within a few percent
// on smooth distributions. Fixed (rather than adaptive) boundaries are
// what make a request-rate histogram safe: Observe is O(1), never
// rebalances, and never grows.
const (
	histMinBound         = 1e-9
	histBucketsPerDecade = 10
	histDecades          = 15
	histBuckets          = histBucketsPerDecade * histDecades
)

// histBound returns the upper bound of regular bucket i (1-based).
func histBound(i int) float64 {
	return histMinBound * math.Pow(10, float64(i)/histBucketsPerDecade)
}

// histBucketFor maps an observation to its bucket index: 0 is the
// underflow bucket (v <= 1e-9, including zero and negatives), 1..histBuckets
// are the log-spaced buckets, histBuckets+1 is overflow.
func histBucketFor(v float64) int {
	if v <= histMinBound || math.IsNaN(v) {
		return 0
	}
	idx := 1 + int(math.Floor(math.Log10(v/histMinBound)*histBucketsPerDecade))
	if idx < 1 {
		idx = 1
	}
	if idx > histBuckets {
		idx = histBuckets + 1
	}
	return idx
}

// Histogram records a stream of observations into fixed log-spaced buckets
// and answers count / sum / min / max / quantile queries. Count, Sum, Min,
// and Max are exact; Quantile is an estimate bounded by the bucket
// resolution (~±12% worst case, far tighter in practice). Memory is
// constant regardless of observation volume, which is what lets the serve
// tier record one histogram per route+status under sustained load.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets + 2]uint64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts[histBucketFor(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-quantile (q in [0,1]): it walks the cumulative
// bucket counts to the target rank and interpolates geometrically inside
// the landing bucket (log-spaced buckets make the geometric mean the
// unbiased position), clamping to the exact observed min/max so the tails
// never report values outside the data. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += int64(c)
		if cum < target {
			continue
		}
		var est float64
		switch i {
		case 0:
			est = h.min
		case histBuckets + 1:
			est = h.max
		default:
			lo, hi := histBound(i-1), histBound(i)
			frac := 1 - (float64(cum-target)+0.5)/float64(c)
			est = lo * math.Pow(hi/lo, frac)
		}
		return math.Min(math.Max(est, h.min), h.max)
	}
	return h.max // unreachable: cum reaches count
}

// Registry names and owns a run's metrics. Lookup methods create the metric
// on first use; on a nil registry they return nil, on which every metric
// method is a no-op — the zero-cost-when-disabled contract.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Metric is one entry of a registry snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`  // "counter", "gauge", or "histogram"
	Value float64 `json:"value"` // counter/gauge value; histogram sum
	// Histogram-only summary fields.
	Count     int        `json:"count,omitempty"`
	Min       float64    `json:"min,omitempty"`
	Max       float64    `json:"max,omitempty"`
	Quantiles [4]float64 `json:"quantiles,omitempty"` // p50, p90, p95, p99
}

// Snapshot returns every metric, sorted by (kind, name), for exporters.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var out []Metric
	for name, c := range counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range hists {
		out = append(out, Metric{
			Name: name, Kind: "histogram", Value: h.Sum(), Count: h.Count(),
			Min: h.Min(), Max: h.Max(),
			Quantiles: [4]float64{h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.95), h.Quantile(0.99)},
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}
