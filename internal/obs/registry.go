package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric, safe for concurrent
// use. All methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta to the gauge — the form in-flight style gauges
// need when increments and decrements race across goroutines.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram records a stream of observations and answers count / sum /
// quantile queries. Observations are retained exactly (the pipeline records
// at stage granularity, so cardinality stays small).
type Histogram struct {
	mu   sync.Mutex
	vals []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.vals = append(h.vals, v)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vals)
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := 0.0
	for _, v := range h.vals {
		s += v
	}
	return s
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	m := 0.0
	for i, v := range h.vals {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-quantile (q in [0,1]) with linear interpolation
// between order statistics; it returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	vals := append([]float64(nil), h.vals...)
	h.mu.Unlock()
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	rank := q * float64(len(vals)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// Registry names and owns a run's metrics. Lookup methods create the metric
// on first use; on a nil registry they return nil, on which every metric
// method is a no-op — the zero-cost-when-disabled contract.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Metric is one entry of a registry snapshot.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`  // "counter", "gauge", or "histogram"
	Value float64 `json:"value"` // counter/gauge value; histogram sum
	// Histogram-only summary fields.
	Count     int        `json:"count,omitempty"`
	Quantiles [3]float64 `json:"quantiles,omitempty"` // p50, p90, p99
}

// Snapshot returns every metric, sorted by (kind, name), for exporters.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var out []Metric
	for name, c := range counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range hists {
		out = append(out, Metric{
			Name: name, Kind: "histogram", Value: h.Sum(), Count: h.Count(),
			Quantiles: [3]float64{h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)},
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}
