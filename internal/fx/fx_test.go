package fx

import (
	"testing"
	"time"
)

func at(y int, m time.Month) time.Time {
	return time.Date(y, m, 15, 12, 0, 0, 0, time.UTC)
}

func TestUSDIsBase(t *testing.T) {
	tab := Default()
	r, err := tab.Rate(USD, at(2019, time.March))
	if err != nil || r != 1 {
		t.Fatalf("USD rate = %v, %v", r, err)
	}
}

func TestAllSeriesCoverStudyWindow(t *testing.T) {
	tab := Default()
	for _, c := range tab.Currencies() {
		if got := len(tab.rates[c]); got != studyMonths {
			t.Errorf("%s has %d months, want %d", c, got, studyMonths)
		}
		for i, v := range tab.rates[c] {
			if v <= 0 {
				t.Errorf("%s month %d has non-positive rate %v", c, i, v)
			}
		}
	}
}

func TestBTCTrajectoryShape(t *testing.T) {
	tab := Default()
	jun18, _ := tab.Rate(BTC, at(2018, time.June))
	dec18, _ := tab.Rate(BTC, at(2018, time.December))
	jun19, _ := tab.Rate(BTC, at(2019, time.June))
	mar20, _ := tab.Rate(BTC, at(2020, time.March))
	feb20, _ := tab.Rate(BTC, at(2020, time.February))
	jun20, _ := tab.Rate(BTC, at(2020, time.June))
	if dec18 >= jun18 {
		t.Error("BTC did not fall across H2 2018")
	}
	if jun19 <= dec18 {
		t.Error("BTC did not recover in 2019")
	}
	if mar20 >= feb20 {
		t.Error("BTC lacks the March 2020 COVID crash")
	}
	if jun20 <= mar20 {
		t.Error("BTC lacks the post-crash rebound")
	}
}

func TestRateClampsOutsideWindow(t *testing.T) {
	tab := Default()
	before, err := tab.Rate(BTC, at(2017, time.January))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := tab.Rate(BTC, at(2018, time.June))
	if before != first {
		t.Errorf("pre-window rate %v != first month %v", before, first)
	}
	after, _ := tab.Rate(BTC, at(2021, time.December))
	last, _ := tab.Rate(BTC, at(2020, time.June))
	if after != last {
		t.Errorf("post-window rate %v != last month %v", after, last)
	}
}

func TestToUSD(t *testing.T) {
	tab := Default()
	v, err := tab.ToUSD(2, GBP, at(2019, time.May))
	if err != nil {
		t.Fatal(err)
	}
	if v != 2*1.29 {
		t.Errorf("2 GBP = %v USD", v)
	}
}

func TestUnknownCurrency(t *testing.T) {
	tab := Default()
	if _, err := tab.Rate(Currency("DOGE"), at(2019, time.May)); err == nil {
		t.Error("unknown currency accepted")
	}
	if _, err := tab.ToUSD(1, Currency("DOGE"), at(2019, time.May)); err == nil {
		t.Error("ToUSD with unknown currency accepted")
	}
}

func TestParseCurrency(t *testing.T) {
	cases := map[string]Currency{
		"btc": BTC, "Bitcoin": BTC, "$": USD, "pounds": GBP,
		"eth": ETH, "monero": XMR, "yen": JPY,
	}
	for in, want := range cases {
		got, ok := ParseCurrency(in)
		if !ok || got != want {
			t.Errorf("ParseCurrency(%q) = %v, %v; want %v", in, got, ok, want)
		}
	}
	if _, ok := ParseCurrency("gold doubloons"); ok {
		t.Error("nonsense currency parsed")
	}
}

func TestMonthIndex(t *testing.T) {
	if idx := monthIndex(StudyStart); idx != 0 {
		t.Errorf("monthIndex(start) = %d", idx)
	}
	if idx := monthIndex(time.Date(2020, 6, 30, 0, 0, 0, 0, time.UTC)); idx != studyMonths-1 {
		t.Errorf("monthIndex(end) = %d, want %d", idx, studyMonths-1)
	}
}

func TestKnownAndCurrencies(t *testing.T) {
	tab := Default()
	if !tab.Known(BTC) || tab.Known(Currency("DOGE")) {
		t.Error("Known() wrong")
	}
	if len(tab.Currencies()) != 12 {
		t.Errorf("currencies = %d, want 12", len(tab.Currencies()))
	}
}
