// Package fx provides deterministic historical exchange rates for every
// currency denomination the paper's value analysis encounters, over the
// study window June 2018 – June 2020.
//
// The paper converts contract values "to USD using the conversion rates at
// the time the transactions were made". The real rate feeds are external;
// this substitution ships a coarse monthly table whose crypto entries follow
// the real price trajectory (Bitcoin's 2018 slide, 2019 recovery, the March
// 2020 COVID crash and rebound), so relative value dynamics in Figure 11
// behave like the paper's.
package fx

import (
	"fmt"
	"time"
)

// Currency identifies a fiat or crypto denomination.
type Currency string

// Denominations known to the table. USD is the base currency.
const (
	USD Currency = "USD"
	GBP Currency = "GBP"
	EUR Currency = "EUR"
	CAD Currency = "CAD"
	AUD Currency = "AUD"
	INR Currency = "INR"
	JPY Currency = "JPY"
	BTC Currency = "BTC"
	ETH Currency = "ETH"
	BCH Currency = "BCH"
	LTC Currency = "LTC"
	XMR Currency = "XMR"
)

// StudyStart and StudyEnd bound the paper's data collection window.
var (
	StudyStart = time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
	StudyEnd   = time.Date(2020, 6, 30, 23, 59, 59, 0, time.UTC)
)

// monthIndex converts a time to months since June 2018 (the study start).
func monthIndex(t time.Time) int {
	return (t.Year()-2018)*12 + int(t.Month()) - 6
}

const studyMonths = 25 // 2018-06 .. 2020-06 inclusive

// Table holds USD-per-unit rates for each currency by study month.
type Table struct {
	rates map[Currency][]float64 // length studyMonths
}

// Default returns the built-in rate table.
func Default() *Table {
	t := &Table{rates: make(map[Currency][]float64)}
	t.rates[USD] = constant(1)
	t.rates[GBP] = constant(1.29)
	t.rates[EUR] = constant(1.13)
	t.rates[CAD] = constant(0.75)
	t.rates[AUD] = constant(0.70)
	t.rates[INR] = constant(0.014)
	t.rates[JPY] = constant(0.0092)
	// Crypto trajectories, one value per study month 2018-06 .. 2020-06.
	t.rates[BTC] = []float64{
		6500, 7400, 7000, 6600, 6400, 5600, 3700, // 2018-06..12
		3600, 3700, 3900, 5200, 8000, 9500, 10500, 10800, 9700, 8300, 8800, 7200, // 2019-01..12
		8500, 9300, 5900, 6900, 8800, 9400, // 2020-01..06 (COVID crash in March)
	}
	t.rates[ETH] = []float64{
		520, 460, 410, 220, 200, 180, 110,
		105, 120, 135, 160, 250, 290, 280, 220, 180, 175, 150, 130,
		155, 220, 130, 170, 210, 230,
	}
	t.rates[BCH] = []float64{
		900, 780, 620, 520, 440, 390, 160,
		125, 130, 160, 280, 390, 420, 320, 310, 300, 230, 270, 200,
		350, 370, 220, 240, 240, 245,
	}
	t.rates[LTC] = []float64{
		95, 82, 62, 58, 52, 45, 30,
		32, 44, 59, 75, 95, 130, 95, 75, 65, 56, 58, 42,
		56, 70, 39, 43, 44, 46,
	}
	t.rates[XMR] = []float64{
		125, 135, 105, 112, 105, 90, 47,
		48, 50, 52, 66, 85, 95, 82, 82, 72, 58, 62, 46,
		62, 75, 48, 54, 62, 66,
	}
	return t
}

func constant(v float64) []float64 {
	out := make([]float64, studyMonths)
	for i := range out {
		out[i] = v
	}
	return out
}

// Known reports whether the table has rates for the currency.
func (t *Table) Known(c Currency) bool {
	_, ok := t.rates[c]
	return ok
}

// Currencies returns all denominations in the table.
func (t *Table) Currencies() []Currency {
	out := make([]Currency, 0, len(t.rates))
	for c := range t.rates {
		out = append(out, c)
	}
	return out
}

// Rate returns the USD value of one unit of c at time at. Times before the
// study window clamp to its first month and after to its last, so callers
// slightly outside the window (e.g. completion a few days past collection)
// still convert.
func (t *Table) Rate(c Currency, at time.Time) (float64, error) {
	series, ok := t.rates[c]
	if !ok {
		return 0, fmt.Errorf("fx: unknown currency %q", c)
	}
	idx := monthIndex(at)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(series) {
		idx = len(series) - 1
	}
	return series[idx], nil
}

// ToUSD converts an amount of currency c at time at into USD.
func (t *Table) ToUSD(amount float64, c Currency, at time.Time) (float64, error) {
	r, err := t.Rate(c, at)
	if err != nil {
		return 0, err
	}
	return amount * r, nil
}

// ParseCurrency maps common denomination spellings (case-insensitive
// symbols and names) to a Currency, reporting ok=false for unknown ones.
func ParseCurrency(s string) (Currency, bool) {
	switch s {
	case "usd", "USD", "$", "dollar", "dollars", "bucks":
		return USD, true
	case "gbp", "GBP", "£", "pound", "pounds", "quid":
		return GBP, true
	case "eur", "EUR", "€", "euro", "euros":
		return EUR, true
	case "cad", "CAD":
		return CAD, true
	case "aud", "AUD":
		return AUD, true
	case "inr", "INR", "rupee", "rupees":
		return INR, true
	case "jpy", "JPY", "yen":
		return JPY, true
	case "btc", "BTC", "bitcoin", "Bitcoin", "₿":
		return BTC, true
	case "eth", "ETH", "ethereum", "Ethereum":
		return ETH, true
	case "bch", "BCH":
		return BCH, true
	case "ltc", "LTC", "litecoin":
		return LTC, true
	case "xmr", "XMR", "monero", "Monero":
		return XMR, true
	}
	return "", false
}
