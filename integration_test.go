package turnup

import (
	"math"
	"testing"

	"turnup/internal/dataset"
	"turnup/internal/forum"
)

// TestEndToEndDeterminism verifies the full pipeline — generation plus
// every analysis, including the stochastic models — is reproducible from
// the seeds alone.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (*Dataset, *Results) {
		d, err := Generate(Config{Seed: 77, Scale: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(d, RunOptions{Seed: 77, LatentClassK: 6})
		if err != nil {
			t.Fatal(err)
		}
		return d, res
	}
	d1, r1 := run()
	d2, r2 := run()
	if len(d1.Contracts) != len(d2.Contracts) {
		t.Fatalf("contract counts differ: %d vs %d", len(d1.Contracts), len(d2.Contracts))
	}
	if r1.Values.TotalUSD != r2.Values.TotalUSD {
		t.Errorf("value totals differ: %v vs %v", r1.Values.TotalUSD, r2.Values.TotalUSD)
	}
	if r1.LTM.Fit.LogLik != r2.LTM.Fit.LogLik {
		t.Errorf("LCA log-likelihoods differ: %v vs %v", r1.LTM.Fit.LogLik, r2.LTM.Fit.LogLik)
	}
	if r1.ColdStart.OutlierCount != r2.ColdStart.OutlierCount {
		t.Errorf("cold-start outliers differ: %d vs %d", r1.ColdStart.OutlierCount, r2.ColdStart.OutlierCount)
	}
	for i := range r1.ZIPAll {
		if r1.ZIPAll[i].Model.LogLik != r2.ZIPAll[i].Model.LogLik {
			t.Errorf("ZIP %v log-likelihoods differ", r1.ZIPAll[i].Era)
		}
	}
	// The rendered output is byte-identical.
	if RenderAll(r1) != RenderAll(r2) {
		t.Error("rendered outputs differ between identical runs")
	}
}

// TestScaleLinearity verifies corpus sizes track the Scale knob.
func TestScaleLinearity(t *testing.T) {
	small, err := Generate(Config{Seed: 9, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(Config{Seed: 9, Scale: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(big.Contracts)) / float64(len(small.Contracts))
	if math.Abs(ratio-3) > 0.15 {
		t.Errorf("contract ratio = %.2f, want ~3", ratio)
	}
	uRatio := float64(len(big.Users)) / float64(len(small.Users))
	if math.Abs(uRatio-3) > 0.4 {
		t.Errorf("user ratio = %.2f, want ~3", uRatio)
	}
}

// TestEraConsistencyAcrossAnalyses cross-checks that independent analyses
// agree on shared quantities: taxonomy completions vs growth series vs
// dataset filters.
func TestEraConsistencyAcrossAnalyses(t *testing.T) {
	d, res := apiSuite(t)
	// Growth created series sums to the contract count.
	totalCreated := 0
	for _, n := range res.Growth.Created {
		totalCreated += n
	}
	if totalCreated != len(d.Contracts) {
		t.Errorf("growth created %d vs contracts %d", totalCreated, len(d.Contracts))
	}
	// Taxonomy complete bucket equals the Completed() filter.
	taxComplete := res.Taxonomy.BucketTotal(0) // BucketComplete
	if taxComplete != len(d.Completed()) {
		t.Errorf("taxonomy complete %d vs filter %d", taxComplete, len(d.Completed()))
	}
	// Visibility totals equal taxonomy totals.
	visTotal := 0
	for _, row := range res.Visibility.Rows {
		if !row.Completed {
			visTotal += row.Total()
		}
	}
	if visTotal != res.Taxonomy.Total {
		t.Errorf("visibility total %d vs taxonomy %d", visTotal, res.Taxonomy.Total)
	}
	// Era partitions cover all contracts exactly once.
	eraSum := 0
	for _, e := range []int{0, 1, 2} {
		eraSum += len(d.InEra(dataset.Era(e)))
	}
	if eraSum != len(d.Contracts) {
		t.Errorf("era partition covers %d of %d", eraSum, len(d.Contracts))
	}
	// Per-type monthly value series only contains the types with values.
	for typ := range res.ValueTrend.ByType {
		if typ == forum.VouchCopy {
			t.Error("VOUCH COPY present in value trend")
		}
	}
}
